/**
 * @file
 * Shape-regression layer for the figure pipeline on the tiny config.
 *
 * These tests pin the qualitative physics behind the paper figures —
 * the orderings and asymmetries the evaluation section reports — so a
 * future performance refactor (sweep engine, model fast paths, ...)
 * cannot silently change the figures while the unit tests stay green.
 * They intentionally re-check a few properties covered elsewhere, but
 * through the exact entry points the figure benches call, under both
 * the serial and the parallel sweep path.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/charact.h"
#include "dram/chip.h"
#include "test_common.h"

namespace dramscope {
namespace {

using core::CharactOptions;
using core::Characterization;
using dram::AibMechanism;

/** Fixture parameterized over the sweep job count: every golden shape
 *  must hold on the legacy serial path and on the parallel engine. */
class FigureGoldenTest : public ::testing::TestWithParam<unsigned>
{
  protected:
    FigureGoldenTest()
        : cfg_(testutil::tinyPlain()), chip_(cfg_), host_(chip_)
    {
        opts_.victimRows = 24;
        opts_.baseRow = 300;
        opts_.jobs = GetParam();
        charact_ = std::make_unique<Characterization>(
            host_,
            core::PhysMap::fromSwizzle(chip_.swizzle(),
                                       cfg_.columnsPerRow(),
                                       cfg_.rdDataBits),
            opts_);
    }

    dram::DeviceConfig cfg_;
    dram::Chip chip_;
    bender::Host host_;
    CharactOptions opts_;
    std::unique_ptr<Characterization> charact_;
};

TEST_P(FigureGoldenTest, Fig10EdgeSubarrayBerStaysBelowTypical)
{
    // Figure 10 / O5-O6: edge subarrays flip less than typical ones
    // (tandem wordline halves the disturbance), and the edge gap is
    // wider for (aggr 0, vic 1) than for (aggr 1, vic 0).
    const std::vector<dram::RowAddr> edge = {4, 12, 20, 28};
    const std::vector<dram::RowAddr> typical = {52, 60, 68, 76};
    const auto r = charact_->edgeVsTypical(typical, edge);
    ASSERT_GT(r.typicalAggr0Vic1, 0.0);
    ASSERT_GT(r.typicalAggr1Vic0, 0.0);
    EXPECT_LT(r.edgeAggr0Vic1, r.typicalAggr0Vic1);
    EXPECT_LT(r.edgeAggr1Vic0, r.typicalAggr1Vic0);
    EXPECT_LT(r.edgeAggr1Vic0 / r.typicalAggr1Vic0,
              r.edgeAggr0Vic1 / r.typicalAggr0Vic1);
}

TEST_P(FigureGoldenTest, Fig12AlternationPhaseFollowsPanelKnobs)
{
    // Figure 12 / O7-O8: BER alternates with physical bit index and
    // the phase follows XOR(victim data, aggressor direction).
    for (const bool data_one : {false, true}) {
        for (const bool upper : {false, true}) {
            const auto ber = charact_->berVsPhysIndex(
                AibMechanism::RowHammer, data_one, upper);
            double even = 0, odd = 0;
            for (size_t k = 0; k < ber.size(); ++k)
                ((k & 1) == 0 ? even : odd) += ber[k];
            if (data_one == upper)
                EXPECT_GT(even, 3.0 * odd)
                    << "data=" << data_one << " upper=" << upper;
            else
                EXPECT_GT(odd, 3.0 * even)
                    << "data=" << data_one << " upper=" << upper;
        }
    }
}

TEST_P(FigureGoldenTest, Fig13DischargedGateAsymmetryPresent)
{
    // Figure 13 / O9-O10: RowHammer flips discharged cells through
    // one gate type only, and charged cells through the other.
    const auto hammer = charact_->gateTypeBer(AibMechanism::RowHammer);
    ASSERT_GT(hammer.dischargedGateB, 0.0);
    EXPECT_GT(hammer.dischargedGateB, 5.0 * hammer.dischargedGateA);
    ASSERT_GT(hammer.chargedGateA, 0.0);
    EXPECT_GT(hammer.chargedGateA, 5.0 * hammer.chargedGateB);

    // RowPress never flips discharged cells and uses the opposite
    // gate phase for the charged ones (footnote 7 of the paper).
    const auto press = charact_->gateTypeBer(AibMechanism::RowPress);
    EXPECT_EQ(press.dischargedGateA, 0.0);
    EXPECT_EQ(press.dischargedGateB, 0.0);
    EXPECT_GT(press.chargedGateB, 5.0 * press.chargedGateA);
}

TEST_P(FigureGoldenTest, Fig14NeighborInfluenceOrdering)
{
    // Figure 14a / O11: opposite-valued victim neighbours raise BER,
    // distance-2 more than distance-1.
    const double d1 =
        charact_->relativeBerVictimNeighbors(false, true, false);
    const double d2 =
        charact_->relativeBerVictimNeighbors(false, false, true);
    EXPECT_GT(d1, 0.95);
    EXPECT_GT(d2, d1);

    // Figure 14b / O12: same-valued aggressor cells suppress BER.
    const double a0 =
        charact_->relativeBerAggrNeighbors(false, true, false, false);
    EXPECT_LT(a0, 0.9);
}

TEST_P(FigureGoldenTest, Fig15OppositeNeighborsLowerHcnt)
{
    // Figure 15 / O13: opposite-valued neighbours lower the first-flip
    // hammer count; distance-2 dominates distance-1.
    const double d1 = charact_->relativeHcnt(false, true, false);
    const double d2 = charact_->relativeHcnt(false, false, true);
    EXPECT_LT(d1, 1.0);
    EXPECT_LT(d2, d1);
    EXPECT_GT(d2, 0.3);
}

TEST_P(FigureGoldenTest, Fig16SolidVsStripedPatternOrdering)
{
    // Figures 16/17 / O14: relative to the solid baseline (victim
    // 0xFF, aggressor 0x00), the 2-bit complementary pattern 0x33/0xCC
    // is the worst case, beats the 1-bit stripe 0x55/0xAA, and a
    // same-polarity aggressor is strictly weaker than a complementary
    // one.
    const double solid = charact_->patternBer(0xF, 0x0);
    const double worst = charact_->patternBer(0x3, 0xC);
    const double striped = charact_->patternBer(0x5, 0xA);
    const double matching = charact_->patternBer(0x3, 0x3);
    ASSERT_GT(solid, 0.0);
    EXPECT_GT(worst / solid, 1.15);
    EXPECT_GT(worst, striped);
    EXPECT_GT(worst, matching);
}

TEST_P(FigureGoldenTest, FigurePipelineIsRunToRunDeterministic)
{
    // The same experiment on a fresh identical device reproduces the
    // exact same bits — the invariant every golden test above (and the
    // serial/parallel equivalence layer) stands on.
    const auto once = charact_->berVsPhysIndex(AibMechanism::RowHammer,
                                               true, true);
    dram::Chip chip2(cfg_);
    bender::Host host2(chip2);
    Characterization again(
        host2,
        core::PhysMap::fromSwizzle(chip2.swizzle(), cfg_.columnsPerRow(),
                                   cfg_.rdDataBits),
        opts_);
    EXPECT_EQ(once,
              again.berVsPhysIndex(AibMechanism::RowHammer, true, true));
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, FigureGoldenTest,
                         ::testing::Values(1u, 4u),
                         [](const auto &info) {
                             return "jobs" + std::to_string(info.param);
                         });

} // namespace
} // namespace dramscope
