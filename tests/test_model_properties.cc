/**
 * @file
 * Distributional and scaling properties of the physics model: the
 * calibration promises DESIGN.md makes (BER linear in dose, Hcnt
 * bounds, retention statistics) hold empirically.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bender/host.h"
#include "core/physmap.h"
#include "dram/chip.h"
#include "test_common.h"

namespace dramscope {
namespace {

using dram::DeviceConfig;
using dram::RowAddr;

class ModelProperties : public ::testing::Test
{
  protected:
    ModelProperties()
        : cfg_(testutil::tinyPlain()), chip_(cfg_), host_(chip_)
    {
    }

    /** Flips in a victim row after a fresh single-sided attack. */
    size_t
    flipsAfter(RowAddr victim, uint64_t count, double open_ns = 35.0)
    {
        host_.writeRowPattern(0, victim, ~0ULL);
        host_.writeRowPattern(0, victim + 1, 0);
        host_.hammer(0, victim + 1, count, open_ns);
        const BitVec row = host_.readRowBits(0, victim);
        return row.size() - row.popcount();
    }

    DeviceConfig cfg_;
    dram::Chip chip_;
    bender::Host host_;
};

TEST_F(ModelProperties, BerIsRoughlyLinearInActivationCount)
{
    // Uniform thresholds make BER linear in dose, which is what lets
    // the paper's multiplicative factors map onto BER ratios.  Sum
    // over several rows for stable statistics.
    size_t flips1 = 0, flips2 = 0, flips4 = 0;
    for (RowAddr v = 52; v < 84; v += 4) {
        flips1 += flipsAfter(v, 100000);
        flips2 += flipsAfter(v, 200000);
        flips4 += flipsAfter(v, 400000);
    }
    ASSERT_GT(flips1, 20u);
    EXPECT_NEAR(double(flips2) / double(flips1), 2.1, 0.5);
    EXPECT_NEAR(double(flips4) / double(flips2), 2.1, 0.5);
}

TEST_F(ModelProperties, NoFlipsBelowTheMinimumThreshold)
{
    // thresholdMin = 8K ACTs: a 7K attack can never flip anything.
    for (RowAddr v = 52; v < 84; v += 4)
        EXPECT_EQ(flipsAfter(v, 7000), 0u);
}

TEST_F(ModelProperties, PressDoseScalesWithOpenTime)
{
    size_t short_open = 0, long_open = 0;
    for (RowAddr v = 52; v < 84; v += 4) {
        short_open += flipsAfter(v, 4096, 3900.0);
        long_open += flipsAfter(v, 4096, 7800.0);
    }
    EXPECT_GT(long_open, short_open);
    EXPECT_GT(short_open, 0u);
}

TEST_F(ModelProperties, HammerAndPressFlipDisjointCellPopulations)
{
    // SS V-B: "the gradient for flipped cells overlapping with
    // RowPress and RowHammer converges to 0" — independent per-cell
    // thresholds give (near-)disjoint flip sets.
    const RowAddr victim = 60;
    host_.writeRowPattern(0, victim, ~0ULL);
    host_.writeRowPattern(0, victim + 1, 0);
    host_.hammer(0, victim + 1, 300000);
    BitVec hammer_read = host_.readRowBits(0, victim);
    hammer_read = hammer_read.inverted();  // Flip positions.

    host_.writeRowPattern(0, victim, ~0ULL);
    host_.press(0, victim + 1, 8192);
    BitVec press_read = host_.readRowBits(0, victim);
    press_read = press_read.inverted();

    size_t overlap = 0;
    for (size_t i = 0; i < hammer_read.size(); ++i) {
        if (hammer_read.get(i) && press_read.get(i))
            ++overlap;
    }
    // Different gate phases make the overlap structurally zero here.
    EXPECT_LE(overlap, 1u);
    EXPECT_GT(hammer_read.popcount(), 5u);
    EXPECT_GT(press_read.popcount(), 5u);
}

TEST_F(ModelProperties, DoubleSidedDoseIsAdditive)
{
    // Hammering both neighbours accumulates both doses before the
    // commit, so the double-sided flip set contains the union of the
    // single-sided sets (the paper's double-sided attacks flip more).
    const RowAddr victim = 60;
    auto run = [&](bool low, bool up) {
        host_.writeRowPattern(0, victim, ~0ULL);
        host_.writeRowPattern(0, victim - 1, 0);
        host_.writeRowPattern(0, victim + 1, 0);
        if (low)
            host_.hammer(0, victim - 1, 200000);
        if (up)
            host_.hammer(0, victim + 1, 200000);
        // Flip positions (written all-ones, so flips read as zeros).
        return host_.readRowBits(0, victim).inverted();
    };
    const BitVec lower_only = run(true, false);
    const BitVec upper_only = run(false, true);
    const BitVec both = run(true, true);
    for (size_t i = 0; i < both.size(); ++i) {
        if (lower_only.get(i) || upper_only.get(i))
            EXPECT_TRUE(both.get(i)) << i;
    }
    EXPECT_GT(both.popcount(),
              std::max(lower_only.popcount(), upper_only.popcount()));
}

TEST_F(ModelProperties, RetentionFractionTracksTheLognormal)
{
    // After waiting t, the decayed fraction of charged cells should
    // approximate Phi(ln(t / median) / sigma).
    auto decayed_fraction = [&](double wait_ms) {
        DeviceConfig cfg = cfg_;
        dram::Chip chip(cfg);
        bender::Host host(chip);
        size_t lost = 0, total = 0;
        for (RowAddr r = 10; r < 18; ++r) {
            host.writeRowPattern(0, r, ~0ULL);
        }
        host.waitMs(wait_ms);
        for (RowAddr r = 10; r < 18; ++r) {
            const BitVec row = host.readRowBits(0, r);
            lost += row.size() - row.popcount();
            total += row.size();
        }
        return double(lost) / double(total);
    };
    const double median_ms = cfg_.retention.medianRetentionMs;
    EXPECT_NEAR(decayed_fraction(median_ms), 0.5, 0.08);
    EXPECT_LT(decayed_fraction(median_ms / 16), 0.08);
    EXPECT_GT(decayed_fraction(median_ms * 16), 0.92);
}

TEST_F(ModelProperties, WeakestCellHcntIsRealistic)
{
    // The weakest cell of a row should flip within ~8.5-30K ACTs
    // (thresholdMin + expected minimum of the uniform tail).
    const RowAddr victim = 60;
    auto any_flip = [&](uint64_t count) {
        host_.writeRowPattern(0, victim, ~0ULL);
        host_.writeRowPattern(0, victim + 1, 0);
        host_.hammer(0, victim + 1, count);
        const BitVec row = host_.readRowBits(0, victim);
        return row.popcount() != row.size();
    };
    uint64_t lo = 1000, hi = 1u << 21;
    ASSERT_TRUE(any_flip(hi));
    while (lo + 1 < hi) {
        const uint64_t mid = lo + (hi - lo) / 2;
        (any_flip(mid) ? hi : lo) = mid;
    }
    EXPECT_GE(hi, 8000u);
    EXPECT_LE(hi, 80000u);
}

TEST_F(ModelProperties, ViolationFreeOperationIsSilent)
{
    host_.writeRowPattern(0, 5, ~0ULL);
    host_.readRow(0, 5);
    host_.refresh();
    EXPECT_EQ(chip_.violationCount(), 0u);
}

TEST_F(ModelProperties, MatBoundaryBlocksHorizontalInfluence)
{
    // A victim bit at the last cell of a MAT must not be boosted by
    // flipping the first cell of the next MAT (SS IV-A isolation).
    const auto map = core::PhysMap::fromSwizzle(
        chip_.swizzle(), cfg_.columnsPerRow(), cfg_.rdDataBits);
    const uint32_t boundary = cfg_.matWidth;  // First cell of MAT 1.

    auto flips_at = [&](bool flip_neighbor) {
        size_t flips = 0;
        for (RowAddr v = 52; v < 84; v += 4) {
            BitVec victim(cfg_.rowBits, false);
            BitVec phys(cfg_.rowBits, false);
            if (flip_neighbor)
                phys.set(boundary, true);  // Across the MAT boundary.
            host_.writeRowBits(0, v, map.toHost(phys));
            host_.writeRowPattern(0, v + 1, ~0ULL);
            host_.hammer(0, v + 1, 1200000);
            BitVec read = map.toPhysical(host_.readRowBits(0, v));
            flips += read.get(boundary - 1) !=
                     phys.get(boundary - 1);
            flips += read.get(boundary - 2) !=
                     phys.get(boundary - 2);
        }
        return flips;
    };
    // Deterministic differential: identical counts = no influence.
    EXPECT_EQ(flips_at(false), flips_at(true));
}

} // namespace
} // namespace dramscope
