/**
 * @file
 * Swizzle and PhysMap tests, including the Figure 8 misinterpretation
 * demonstration (ColStripe acts as Solid).
 */

#include <gtest/gtest.h>

#include "core/physmap.h"
#include "dram/config.h"
#include "dram/swizzle.h"
#include "test_common.h"

namespace dramscope {
namespace {

TEST(Swizzle, BijectiveOverTheRow)
{
    const dram::DeviceConfig cfg = dram::makeTinyConfig();
    const dram::Swizzle swz(cfg);
    std::vector<bool> seen(cfg.rowBits, false);
    for (uint32_t c = 0; c < cfg.columnsPerRow(); ++c) {
        for (uint32_t i = 0; i < cfg.rdDataBits; ++i) {
            const auto bl = swz.physicalBl(c, i);
            EXPECT_FALSE(seen[bl]);
            seen[bl] = true;
            const auto [col2, bit2] = swz.logicalBit(bl);
            EXPECT_EQ(col2, c);
            EXPECT_EQ(bit2, i);
        }
    }
}

TEST(Swizzle, RdDataSpreadsAcrossAllMats)
{
    // O1: one RD collects groupBits() cells from every MAT, with each
    // MAT spanning matWidth bitlines (O2).
    const dram::DeviceConfig cfg = dram::makePreset("A_x4_2016");
    const dram::Swizzle swz(cfg);
    std::vector<int> per_mat(cfg.matsPerRow(), 0);
    for (uint32_t i = 0; i < cfg.rdDataBits; ++i)
        ++per_mat[swz.physicalBl(5, i) / cfg.matWidth];
    for (int n : per_mat)
        EXPECT_EQ(n, int(cfg.groupBits()));
}

TEST(Swizzle, GroupCellsAreContiguous)
{
    const dram::DeviceConfig cfg = dram::makePreset("B_x4_2019");
    const dram::Swizzle swz(cfg);
    // The cells one column contributes to a MAT form one contiguous
    // group of groupBits cells.
    const uint32_t col = 17;
    std::vector<uint32_t> bls;
    for (uint32_t i = 0; i < cfg.rdDataBits; ++i) {
        const auto bl = swz.physicalBl(col, i);
        if (bl / cfg.matWidth == 0)
            bls.push_back(bl);
    }
    ASSERT_EQ(bls.size(), cfg.groupBits());
    std::sort(bls.begin(), bls.end());
    for (size_t k = 1; k < bls.size(); ++k)
        EXPECT_EQ(bls[k], bls[k - 1] + 1);
}

TEST(PhysMap, RoundtripConversions)
{
    const dram::DeviceConfig cfg = dram::makeTinyConfig();
    const dram::Swizzle swz(cfg);
    const auto map = core::PhysMap::fromSwizzle(swz, cfg.columnsPerRow(),
                                                cfg.rdDataBits);
    BitVec host(cfg.rowBits);
    for (size_t i = 0; i < host.size(); i += 7)
        host.set(i, true);
    EXPECT_EQ(map.toHost(map.toPhysical(host)), host);
    for (uint32_t h = 0; h < cfg.rowBits; ++h)
        EXPECT_EQ(map.hostOf(map.physOf(h)), h);
}

TEST(PhysMap, PhysicalPatternLandsPhysically)
{
    const dram::DeviceConfig cfg = dram::makeTinyConfig();
    const dram::Swizzle swz(cfg);
    const auto map = core::PhysMap::fromSwizzle(swz, cfg.columnsPerRow(),
                                                cfg.rdDataBits);
    const BitVec host = map.hostBitsForPhysicalPattern(0b0011, 4);
    const BitVec phys = map.toPhysical(host);
    for (size_t p = 0; p < phys.size(); ++p)
        EXPECT_EQ(phys.get(p), (p % 4) < 2) << p;
}

TEST(PhysMap, IdentityByDefault)
{
    core::PhysMap map(64);
    EXPECT_EQ(map.physOf(10), 10u);
    EXPECT_EQ(map.hostOf(20), 20u);
}

TEST(PhysMap, RejectsNonPermutation)
{
    EXPECT_DEATH(core::PhysMap::fromTable({0, 0, 1}), "permutation");
}

TEST(Figure8, ColStripeActsAsSolidInsideMatGroups)
{
    // Figure 8a: a host "ColStripe" pattern (alternating RD_data
    // bits) lands as per-MAT solid blocks for Mfr. A's swizzle,
    // because consecutive RD bits go to *different* MATs.
    const dram::DeviceConfig cfg = dram::makePreset("A_x4_2016");
    const dram::Swizzle swz(cfg);
    const auto map = core::PhysMap::fromSwizzle(swz, cfg.columnsPerRow(),
                                                cfg.rdDataBits);
    BitVec host(cfg.rowBits);
    host.fillPattern(0b01, 2);  // ColStripe in host space.
    const BitVec phys = map.toPhysical(host);

    // Within every MAT-column group (4 consecutive cells) the value
    // is constant: the stripe degenerated to solid runs.
    const uint32_t g = cfg.groupBits();
    for (uint32_t start = 0; start + g <= cfg.rowBits; start += g) {
        for (uint32_t k = 1; k < g; ++k) {
            EXPECT_EQ(phys.get(start + k), phys.get(start))
                << "group at " << start;
        }
    }
}

TEST(Figure8, TrueColStripeNeedsThePhysMap)
{
    // Writing through the reconstructed map produces a genuine
    // physical stripe.
    const dram::DeviceConfig cfg = dram::makePreset("A_x4_2016");
    const dram::Swizzle swz(cfg);
    const auto map = core::PhysMap::fromSwizzle(swz, cfg.columnsPerRow(),
                                                cfg.rdDataBits);
    const BitVec host = map.hostBitsForPhysicalPattern(0b01, 2);
    const BitVec phys = map.toPhysical(host);
    for (size_t p = 0; p + 1 < phys.size(); ++p)
        EXPECT_NE(phys.get(p), phys.get(p + 1));
}

} // namespace
} // namespace dramscope
