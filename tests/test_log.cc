/**
 * @file
 * Log level filtering, panic/fatal semantics, and thread-safety of
 * Log::emit (the multithreaded case is what the thread-sanitizer CI
 * job exercises: sweep workers warn concurrently).
 */

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/log.h"

namespace dramscope {
namespace {

/** RAII guard restoring the process-wide log level. */
class LevelGuard
{
  public:
    explicit LevelGuard(LogLevel lvl) : saved_(Log::level())
    {
        Log::setLevel(lvl);
    }
    ~LevelGuard() { Log::setLevel(saved_); }

  private:
    LogLevel saved_;
};

std::string
captureEmit(LogLevel emit_lvl, const std::string &msg)
{
    testing::internal::CaptureStderr();
    Log::emit(emit_lvl, msg);
    return testing::internal::GetCapturedStderr();
}

TEST(LogTest, MessagesAtOrBelowTheLevelAreEmitted)
{
    LevelGuard guard(LogLevel::Info);
    EXPECT_EQ(captureEmit(LogLevel::Error, "boom"), "error: boom\n");
    EXPECT_EQ(captureEmit(LogLevel::Warn, "hm"), "warn: hm\n");
    EXPECT_EQ(captureEmit(LogLevel::Info, "fyi"), "info: fyi\n");
}

TEST(LogTest, MessagesAboveTheLevelAreDropped)
{
    LevelGuard guard(LogLevel::Warn);
    EXPECT_EQ(captureEmit(LogLevel::Info, "fyi"), "");
    EXPECT_EQ(captureEmit(LogLevel::Debug, "noise"), "");
}

TEST(LogTest, SilentDropsEverything)
{
    LevelGuard guard(LogLevel::Silent);
    EXPECT_EQ(captureEmit(LogLevel::Error, "boom"), "");
}

TEST(LogTest, HelpersUseTheirLevel)
{
    LevelGuard guard(LogLevel::Debug);
    testing::internal::CaptureStderr();
    warn("w");
    inform("i");
    debugLog("d");
    EXPECT_EQ(testing::internal::GetCapturedStderr(),
              "warn: w\ninfo: i\ndebug: d\n");
}

TEST(LogDeathTest, PanicIfFiresWhenTheConditionHolds)
{
    panicIf(false, "must not fire");
    EXPECT_DEATH(panicIf(true, "invariant broken"), "invariant broken");
}

TEST(LogDeathTest, FatalIfExitsWhenTheConditionHolds)
{
    fatalIf(false, "must not fire");
    EXPECT_EXIT(fatalIf(true, "bad config"),
                testing::ExitedWithCode(1), "bad config");
}

TEST(LogTest, ConcurrentEmittersNeverInterleaveWithinALine)
{
    LevelGuard guard(LogLevel::Warn);
    constexpr int kThreads = 4;
    constexpr int kLines = 200;

    testing::internal::CaptureStderr();
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            const std::string msg =
                "thread-" + std::string(1, char('A' + t)) + "-line";
            for (int i = 0; i < kLines; ++i)
                warn(msg);
        });
    }
    for (auto &th : threads)
        th.join();
    const std::string out = testing::internal::GetCapturedStderr();

    // Every line must be a complete, untruncated emission.
    std::istringstream in(out);
    std::string line;
    int count = 0;
    while (std::getline(in, line)) {
        EXPECT_EQ(line.substr(0, 6), "warn: ") << line;
        EXPECT_EQ(line.size(), std::string("warn: thread-A-line").size())
            << line;
        ++count;
    }
    EXPECT_EQ(count, kThreads * kLines);
}

} // namespace
} // namespace dramscope
