/**
 * @file
 * Bender program/executor edge cases: fast-path detection boundaries,
 * loop semantics, and command accounting.
 */

#include <gtest/gtest.h>

#include "bender/host.h"
#include "dram/chip.h"
#include "test_common.h"

namespace dramscope {
namespace {

using bender::Program;

class BenderEdgeTest : public ::testing::Test
{
  protected:
    BenderEdgeTest()
        : cfg_(testutil::tinyPlain()), chip_(cfg_), host_(chip_)
    {
    }

    dram::DeviceConfig cfg_;
    dram::Chip chip_;
    bender::Host host_;
};

TEST_F(BenderEdgeTest, MixedRowLoopStillExecutesCorrectly)
{
    // A loop body touching two different rows cannot use the bulk
    // path; dose accounting must still be exact.
    host_.writeRowPattern(0, 59, ~0ULL);
    host_.writeRowPattern(0, 61, ~0ULL);
    host_.writeRowPattern(0, 60, ~0ULL);
    host_.writeRowPattern(0, 58, 0);
    host_.writeRowPattern(0, 62, 0);

    Program p;
    p.loopBegin(150000)
        .act(0, 58)
        .sleepNs(33.75)
        .pre(0)
        .sleepNs(13.75)
        .act(0, 62)
        .sleepNs(33.75)
        .pre(0)
        .sleepNs(13.75)
        .loopEnd();
    host_.run(p);

    // Rows 59 and 61 each received 150K single-sided doses.
    for (dram::RowAddr v : {59u, 61u}) {
        const BitVec row = host_.readRowBits(0, v);
        EXPECT_GT(row.size() - row.popcount(), 5u) << v;
    }
    // Row 60 is adjacent to neither aggressor... it is adjacent to
    // both 59 and 61, which were never activated: zero flips.
    const BitVec mid = host_.readRowBits(0, 60);
    EXPECT_EQ(mid.size() - mid.popcount(), 0u);
}

TEST_F(BenderEdgeTest, LoopCountZeroIsANop)
{
    Program p;
    p.loopBegin(0).act(0, 5).pre(0).loopEnd();
    const auto r = host_.run(p);
    EXPECT_EQ(r.commandsIssued, 0u);
    EXPECT_EQ(chip_.stats().acts, 0u);
}

TEST_F(BenderEdgeTest, LoopWithLeadingNopFallsBackAndMatches)
{
    // A NOP before the ACT breaks the bulk pattern; both paths must
    // produce identical device state.
    auto run = [&](bool leading_nop) {
        dram::Chip chip(cfg_);
        bender::Host host(chip);
        host.writeRowPattern(0, 60, ~0ULL);
        host.writeRowPattern(0, 61, 0);
        Program p;
        p.loopBegin(50000);
        if (leading_nop)
            p.nop(1);
        p.act(0, 61).sleepNs(33.75).pre(0).sleepNs(12.5);
        p.loopEnd();
        host.run(p);
        host.hammer(0, 61, 250000);
        return host.readRowBits(0, 60);
    };
    EXPECT_EQ(run(false), run(true));
}

TEST_F(BenderEdgeTest, RefInsideLoopExecutes)
{
    Program p;
    p.loopBegin(3).ref().sleepNs(350).loopEnd();
    host_.run(p);
    EXPECT_EQ(chip_.stats().refs, 3u);
}

TEST_F(BenderEdgeTest, CommandsIssuedCountsLoopIterations)
{
    Program p;
    p.loopBegin(100)
        .act(0, 61)
        .sleepNs(33.75)
        .pre(0)
        .sleepNs(13.75)
        .loopEnd();
    const auto r = host_.run(p);
    EXPECT_EQ(r.commandsIssued, 200u);
    EXPECT_EQ(chip_.stats().acts, 100u);
    EXPECT_EQ(chip_.stats().pres, 100u);
}

TEST_F(BenderEdgeTest, WriteColumnsTouchesOnlyRequestedColumns)
{
    host_.writeRowPattern(0, 7, ~0ULL);
    host_.writeColumns(0, 7, {1, 3}, 0);
    const auto cols = host_.readRow(0, 7);
    const uint64_t mask = (1ULL << cfg_.rdDataBits) - 1;
    for (size_t c = 0; c < cols.size(); ++c) {
        if (c == 1 || c == 3)
            EXPECT_EQ(cols[c], 0u) << c;
        else
            EXPECT_EQ(cols[c], mask) << c;
    }
}

TEST_F(BenderEdgeTest, ReadColumnsReturnsInRequestOrder)
{
    std::vector<uint64_t> data(cfg_.columnsPerRow());
    for (size_t c = 0; c < data.size(); ++c)
        data[c] = c + 1;
    host_.writeRow(0, 9, data);
    const auto out = host_.readColumns(0, 9, {5, 2, 7});
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 6u);
    EXPECT_EQ(out[1], 3u);
    EXPECT_EQ(out[2], 8u);
}

TEST_F(BenderEdgeTest, HammerZeroCountIsHarmless)
{
    host_.hammer(0, 61, 0);
    EXPECT_EQ(chip_.stats().acts, 0u);
}

TEST_F(BenderEdgeTest, ValidateAcceptsZeroCountLoops)
{
    // A zero-iteration loop is a lint warning, not a structural
    // error: validate() must not die on it.
    Program p;
    p.loopBegin(0).act(0, 5).pre(0).loopEnd();
    p.validate();
    host_.run(p);
    EXPECT_EQ(chip_.stats().acts, 0u);
}

TEST_F(BenderEdgeTest, ValidateAcceptsDeepNesting)
{
    Program p;
    for (int i = 0; i < 16; ++i)
        p.loopBegin(1);
    p.nop(1);
    for (int i = 0; i < 16; ++i)
        p.loopEnd();
    p.validate();
}

TEST_F(BenderEdgeTest, StrayLoopEndDies)
{
    Program p;
    p.act(0, 1).sleepNs(cfg_.timing.tRasNs).pre(0).loopEnd();
    EXPECT_DEATH(p.validate(), "unbalanced");
}

} // namespace
} // namespace dramscope
