/**
 * @file
 * SECDED codec and ECC-memory tests, plus templating analysis tests
 * (SS VI-A/VI-B extensions).
 */

#include <gtest/gtest.h>

#include "core/attack/templating.h"
#include "core/patterns.h"
#include "core/protect/ecc.h"
#include "dram/chip.h"
#include "test_common.h"

namespace dramscope {
namespace {

using core::Secded72;

TEST(Secded, CleanWordsDecodeClean)
{
    Rng rng(42);
    for (int k = 0; k < 1000; ++k) {
        uint64_t data = rng.next();
        const uint8_t check = Secded72::encode(data);
        uint64_t received = data;
        EXPECT_EQ(Secded72::decode(received, check),
                  Secded72::Outcome::Clean);
        EXPECT_EQ(received, data);
    }
}

TEST(Secded, CorrectsEverySingleBitError)
{
    Rng rng(43);
    for (int k = 0; k < 100; ++k) {
        const uint64_t data = rng.next();
        const uint8_t check = Secded72::encode(data);
        for (unsigned bit = 0; bit < 64; ++bit) {
            uint64_t received = data ^ (1ULL << bit);
            EXPECT_EQ(Secded72::decode(received, check),
                      Secded72::Outcome::Corrected);
            EXPECT_EQ(received, data) << "bit " << bit;
        }
    }
}

TEST(Secded, ToleratesCheckBitErrors)
{
    const uint64_t data = 0x0123456789ABCDEFULL;
    const uint8_t check = Secded72::encode(data);
    for (unsigned bit = 0; bit < 8; ++bit) {
        uint64_t received = data;
        EXPECT_EQ(Secded72::decode(received, uint8_t(check ^ (1u << bit))),
                  Secded72::Outcome::Corrected);
        EXPECT_EQ(received, data);
    }
}

TEST(Secded, DetectsEveryDoubleBitError)
{
    Rng rng(44);
    for (int k = 0; k < 20; ++k) {
        const uint64_t data = rng.next();
        const uint8_t check = Secded72::encode(data);
        for (unsigned a = 0; a < 64; a += 7) {
            for (unsigned b = a + 1; b < 64; b += 5) {
                uint64_t received =
                    data ^ (1ULL << a) ^ (1ULL << b);
                EXPECT_EQ(Secded72::decode(received, check),
                          Secded72::Outcome::Detected)
                    << a << "," << b;
            }
        }
    }
}

TEST(EccMemory, RoundtripAndCorrectionOfInjectedError)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::EccMemory ecc(host);

    BitVec data(cfg.rowBits);
    for (size_t i = 0; i < data.size(); i += 3)
        data.set(i, true);
    ecc.writeRowBits(0, 9, data);

    // Inject a single-bit error behind the controller's back.
    BitVec corrupted = host.readRowBits(0, 9);
    corrupted.flip(100);
    host.writeRowBits(0, 9, corrupted);

    const BitVec read = ecc.readRowBits(0, 9);
    EXPECT_EQ(read, data);
    EXPECT_EQ(ecc.stats().corrected, 1u);
    EXPECT_EQ(ecc.stats().detected, 0u);
}

TEST(EccMemory, FlagsDoubleErrorsUncorrectable)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::EccMemory ecc(host);

    BitVec data(cfg.rowBits, true);
    ecc.writeRowBits(0, 9, data);
    BitVec corrupted = host.readRowBits(0, 9);
    corrupted.flip(10);
    corrupted.flip(20);  // Same 64-bit word.
    host.writeRowBits(0, 9, corrupted);

    std::vector<bool> due;
    ecc.readRowBits(0, 9, &due);
    EXPECT_EQ(ecc.stats().detected, 1u);
    EXPECT_TRUE(due.at(0));
}

TEST(EccMemory, MitigatesSparseHammerFlips)
{
    // A mild attack leaves <= 1 flip per 64-bit word most of the
    // time; SECDED recovers the data.
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::EccMemory ecc(host);

    const BitVec ones(cfg.rowBits, true);
    ecc.writeRowBits(0, 60, ones);
    host.writeRowPattern(0, 61, 0);
    host.hammer(0, 61, 30000);  // Mild: ~1% BER on one gate phase.

    const BitVec read = ecc.readRowBits(0, 60);
    const size_t residual = read.size() - read.popcount();
    const BitVec raw = host.readRowBits(0, 60);
    const size_t raw_flips = raw.size() - raw.popcount();
    EXPECT_GE(raw_flips, 1u);
    EXPECT_LT(residual, raw_flips);
}

TEST(Templating, CouplingRaisesReachability)
{
    // SS VI-A: coupled-row activation increases the probability of a
    // successful massaging phase.
    const dram::DeviceConfig cfg = dram::makePreset("B_x4_2019");
    core::TemplatingOptions opts;
    opts.trials = 20000;
    opts.useCoupling = true;
    const auto with = core::simulateTemplating(cfg, opts);
    opts.useCoupling = false;
    const auto without = core::simulateTemplating(cfg, opts);

    EXPECT_GT(with.probability(), 1.5 * without.probability());
    // Sanity: ~1 - (1-p)^2 for two neighbours at share p.
    EXPECT_NEAR(without.probability(), 0.0975, 0.02);
}

TEST(Templating, UncoupledPresetUnaffectedByTheFlag)
{
    const dram::DeviceConfig cfg = dram::makePreset("A_x4_2018");
    core::TemplatingOptions opts;
    opts.trials = 10000;
    opts.useCoupling = true;
    const auto a = core::simulateTemplating(cfg, opts);
    opts.useCoupling = false;
    const auto b = core::simulateTemplating(cfg, opts);
    EXPECT_EQ(a.reachable, b.reachable);
}

TEST(Templating, MoreAttackerShareMoreReach)
{
    const dram::DeviceConfig cfg = dram::makePreset("B_x4_2019");
    core::TemplatingOptions opts;
    opts.trials = 10000;
    opts.attackerShare = 0.02;
    const auto low = core::simulateTemplating(cfg, opts);
    opts.attackerShare = 0.20;
    const auto high = core::simulateTemplating(cfg, opts);
    EXPECT_GT(high.probability(), 2.0 * low.probability());
}

} // namespace
} // namespace dramscope
