/**
 * @file
 * Device-interface tests: the same command surface (act/pre/rd/wr/
 * ref/actMany/violations/refreshAggressorNeighbors) driven against
 * the Chip, Dimm and HbmStack backends, and the cross-backend
 * equivalences the abstraction promises.
 */

#include <gtest/gtest.h>

#include "bender/host.h"
#include "core/protect/drfm.h"
#include "core/protect/rfm.h"
#include "dram/chip.h"
#include "dram/hbm_stack.h"
#include "mapping/dimm.h"
#include "test_common.h"

namespace dramscope {
namespace {

TEST(DeviceDimm, BusConfigScalesByChipCount)
{
    mapping::Dimm dimm(testutil::tinyPlain());
    const auto &chip_cfg = dimm.chipConfig();
    const auto &bus = dimm.config();
    ASSERT_EQ(dimm.chipCount(), 16u);
    // Device columns are chip-major: the rank row is the per-chip
    // rows side by side, with per-chip MAT geometry preserved.
    EXPECT_EQ(bus.rowBits, chip_cfg.rowBits * 16);
    EXPECT_EQ(bus.matWidth, chip_cfg.matWidth * 16);
    EXPECT_EQ(bus.rdDataBits, chip_cfg.rdDataBits);
    EXPECT_EQ(bus.columnsPerRow(), chip_cfg.columnsPerRow() * 16);
    EXPECT_EQ(bus.rowsPerBank, chip_cfg.rowsPerBank);
    EXPECT_EQ(bus.numBanks, chip_cfg.numBanks);
    EXPECT_EQ(bus.name, chip_cfg.name + "/rank");
}

TEST(DeviceDimm, HostWorkloadMatchesStandaloneChip)
{
    // With the RCD inversion off and identity DQ twists, a rank is 16
    // copies of the same silicon receiving the same commands: a
    // hammer workload through the Device interface must produce, in
    // every chip's slice of the rank row, exactly the bits a
    // standalone chip produces under the same workload.
    mapping::Dimm dimm(testutil::tinyPlain(), /*rcd_inversion=*/false,
                       /*identity_twist=*/true);
    dram::Chip chip(testutil::tinyPlain());
    bender::Host dimm_host(dimm);
    bender::Host chip_host(chip);

    const dram::RowAddr aggr = 100;
    const uint64_t count = 300000;
    auto run = [&](bender::Host &host) {
        host.writeRowPattern(0, aggr - 1, ~0ULL);
        host.writeRowPattern(0, aggr + 1, ~0ULL);
        host.hammer(0, aggr, count);
        return std::make_pair(host.readRowBits(0, aggr - 1),
                              host.readRowBits(0, aggr + 1));
    };
    const auto [chip_lo, chip_hi] = run(chip_host);
    const auto [dimm_lo, dimm_hi] = run(dimm_host);

    // The workload must actually disturb something, or the equality
    // below is vacuous.
    const size_t chip_flips = (chip.config().rowBits - chip_lo.popcount()) +
                              (chip.config().rowBits - chip_hi.popcount());
    EXPECT_GT(chip_flips, 0u);

    const uint32_t n = chip.config().rowBits;
    ASSERT_EQ(dimm_lo.size(), size_t(n) * 16);
    for (uint32_t c = 0; c < 16; ++c) {
        for (uint32_t i = 0; i < n; ++i) {
            ASSERT_EQ(dimm_lo.get(size_t(c) * n + i), chip_lo.get(i))
                << "chip " << c << " bit " << i;
            ASSERT_EQ(dimm_hi.get(size_t(c) * n + i), chip_hi.get(i))
                << "chip " << c << " bit " << i;
        }
    }
}

TEST(DeviceDimm, ActManyBroadcastsToEveryChip)
{
    mapping::Dimm dimm(testutil::tinyPlain());
    bender::Host host(dimm);
    host.hammer(0, 40, 1234);
    for (uint32_t c = 0; c < dimm.chipCount(); ++c)
        EXPECT_EQ(dimm.chip(c).stats().acts, 1234u) << c;
}

TEST(DeviceDimm, RcdInversionVisibleThroughDevice)
{
    // Common pitfall (1) at the Device level: the host writes "row 5"
    // but B-side chips store it at the inverted address.
    mapping::Dimm dimm(testutil::tinyPlain(), /*rcd_inversion=*/true,
                       /*identity_twist=*/true);
    bender::Host host(dimm);
    host.writeRowPattern(0, 5, 0xFFFFFFFFULL);

    const auto b_side = dimm.chipCount() - 1;
    const auto inverted = dimm.chipRow(b_side, 5);
    ASSERT_NE(inverted, 5u);
    auto &chip = dimm.chip(b_side);
    const auto t = host.now();
    chip.act(0, 5, t + 100);
    EXPECT_EQ(chip.read(0, 0, t + 120), 0u);
    chip.pre(0, t + 160);
    chip.act(0, inverted, t + 200);
    EXPECT_EQ(chip.read(0, 0, t + 220), 0xFFFFFFFFULL);
    chip.pre(0, t + 260);
}

TEST(DeviceDimm, ViolationsAggregateWithChipPrefix)
{
    mapping::Dimm dimm(testutil::tinyPlain());
    // ACT 3ns after PRE is inside the RowCopy gap — a recorded
    // violation on every chip, since commands broadcast.
    dimm.act(0, 10, 1000);
    dimm.pre(0, 1050);
    dimm.act(0, 11, 1053);
    EXPECT_EQ(dimm.violationCount(), uint64_t(dimm.chipCount()));
    const auto log = dimm.violationLog();
    ASSERT_EQ(log.size(), size_t(dimm.chipCount()));
    EXPECT_EQ(log.front().what.rfind("chip0: ", 0), 0u);
    EXPECT_EQ(log.back().what.rfind("chip15: ", 0), 0u);
}

TEST(DeviceDimm, RfmMitigatesOnEveryChip)
{
    // One RFM restores the two physical neighbours of the hottest
    // row *per chip*: 2 x 16 mitigative refreshes on a plain rank.
    mapping::Dimm dimm(testutil::tinyPlain());
    core::RfmEngine engine(dimm, 0);
    engine.onActivate(100, 10000);
    engine.onRfm(5000);
    EXPECT_EQ(engine.mitigations(), 2u * dimm.chipCount());
}

TEST(DeviceDimm, DrfmRunsRankWide)
{
    mapping::Dimm dimm(testutil::tinyPlain());
    core::DrfmOptions opts;
    opts.interval = 1000;
    core::DrfmController drfm(dimm, opts);
    drfm.onActivate(100, 1200, 4000);
    drfm.onActivate(100, 1200, 8000);
    EXPECT_EQ(drfm.drfmCount(), 2u);
}

TEST(DeviceHbm, ChannelsAreIndependentSiliconThroughDevice)
{
    // Each HBM channel derives its own variation seed: the same
    // hammer workload, driven through the Device interface, must not
    // flip the identical cells on every channel.
    dram::HbmStack stack(testutil::tinyPlain(), 4);
    std::vector<BitVec> victims;
    for (uint32_t c = 0; c < stack.channelCount(); ++c) {
        dram::Device &dev = stack.channel(c);
        bender::Host host(dev);
        host.writeRowPattern(0, 99, ~0ULL);
        host.writeRowPattern(0, 101, ~0ULL);
        host.hammer(0, 100, 300000);
        victims.push_back(host.readRowBits(0, 99));
        EXPECT_EQ(dev.config().name,
                  "tiny-plain/ch" + std::to_string(c));
    }
    bool any_pair_differs = false;
    for (size_t a = 0; a < victims.size(); ++a) {
        for (size_t b = a + 1; b < victims.size(); ++b)
            any_pair_differs |= (victims[a] != victims[b]);
    }
    EXPECT_TRUE(any_pair_differs);
}

TEST(DeviceHbm, ConstChannelAccess)
{
    const dram::HbmStack stack(testutil::tinyPlain(), 2);
    EXPECT_EQ(stack.channel(1).config().name, "tiny-plain/ch1");
}

} // namespace
} // namespace dramscope
