/**
 * @file
 * Sweep engine tests: thread-pool unit tests plus the determinism
 * contract — parallel (DRAMSCOPE_JOBS=4) results must be bit-identical
 * to serial (DRAMSCOPE_JOBS=1) for every sweep-routed figure entry
 * point.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>

#include "core/charact.h"
#include "core/sweep.h"
#include "dram/chip.h"
#include "test_common.h"
#include "util/metrics.h"
#include "util/threadpool.h"

namespace dramscope {
namespace {

using core::CharactOptions;
using core::Characterization;
using core::ShardContext;
using core::SweepOptions;
using core::SweepRunner;
using dram::AibMechanism;

// ---------------------------------------------------------------------
// ThreadPool unit tests.
// ---------------------------------------------------------------------

TEST(ThreadPool, FuturesDeliverResultsInSubmissionOrder)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[size_t(i)].get(), i * i);
}

TEST(ThreadPool, RunsEveryTaskAcrossWorkers)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> count{0};
    parallelFor(pool, 1000, [&](uint64_t) { ++count; });
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ZeroTasksIsANoOp)
{
    ThreadPool pool(2);
    bool ran = false;
    parallelFor(pool, 0, [&](uint64_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ZeroThreadsClampsToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    auto fut = pool.submit([] { return 42; });
    EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto fut = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(fut.get(), std::runtime_error);

    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, WorkersSurviveAFloodOfThrowingTasks)
{
    // Regression: a worker must never die with its queue (a lost
    // worker would strand queued tasks and hang the pool at join).
    // Exceptions thrown inside submitted tasks are captured into
    // their futures — they are not "uncaught" escapes.
    ThreadPool pool(4);
    std::vector<std::future<int>> failing;
    for (int i = 0; i < 100; ++i)
        failing.push_back(pool.submit(
            []() -> int { throw std::runtime_error("flood"); }));
    for (auto &f : failing)
        EXPECT_THROW(f.get(), std::runtime_error);
    EXPECT_EQ(pool.uncaughtTaskErrors(), 0u);

    // Every worker is still alive and processing.
    std::atomic<int> count{0};
    parallelFor(pool, 1000, [&](uint64_t) { ++count; });
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexedException)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    try {
        parallelFor(pool, 16, [&](uint64_t i) {
            if (i == 3)
                throw std::runtime_error("boom-3");
            if (i == 11)
                throw std::runtime_error("boom-11");
            ++completed;
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        // Deterministic: always the lowest failing index, regardless
        // of which task happened to fail first in wall-clock order.
        EXPECT_STREQ(e.what(), "boom-3");
    }
    // Every non-throwing task still ran (parallelFor joins them all).
    EXPECT_EQ(completed.load(), 14);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            (void)pool.submit([&count] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                ++count;
            });
    }
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, CurrentWorkerIdentifiesPoolThreads)
{
    EXPECT_EQ(ThreadPool::currentWorker(), -1);
    ThreadPool pool(3);
    std::mutex mu;
    std::set<int> seen;
    parallelFor(pool, 64, [&](uint64_t) {
        const int w = ThreadPool::currentWorker();
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(w);
    });
    for (const int w : seen) {
        EXPECT_GE(w, 0);
        EXPECT_LT(w, 3);
    }
}

// ---------------------------------------------------------------------
// SweepRunner unit tests.
// ---------------------------------------------------------------------

TEST(SweepJobs, ExplicitRequestWins)
{
    EXPECT_EQ(core::resolveJobs(3), 3u);
    EXPECT_EQ(core::resolveJobs(1), 1u);
}

TEST(SweepJobs, EnvironmentKnobParses)
{
    ASSERT_EQ(setenv("DRAMSCOPE_JOBS", "5", 1), 0);
    EXPECT_EQ(core::resolveJobs(), 5u);
    ASSERT_EQ(setenv("DRAMSCOPE_JOBS", "not-a-number", 1), 0);
    EXPECT_GE(core::resolveJobs(), 1u);  // Falls back to hardware.
    ASSERT_EQ(unsetenv("DRAMSCOPE_JOBS"), 0);
    EXPECT_GE(core::resolveJobs(), 1u);
}

class SweepRunnerTest : public ::testing::Test
{
  protected:
    SweepRunnerTest()
        : cfg_(testutil::tinyPlain()), chip_(cfg_), host_(chip_)
    {
    }

    dram::DeviceConfig cfg_;
    dram::Chip chip_;
    bender::Host host_;
};

TEST_F(SweepRunnerTest, ResultsArriveInShardOrder)
{
    SweepRunner serial(host_, SweepOptions{1, 0x5eedULL});
    SweepRunner parallel(host_, SweepOptions{4, 0x5eedULL});
    const auto unit = [](ShardContext &ctx) -> uint32_t {
        return ctx.shard * 10 + ctx.shardCount;
    };
    const auto a = serial.map<uint32_t>(9, unit);
    const auto b = parallel.map<uint32_t>(9, unit);
    ASSERT_EQ(a.size(), 9u);
    for (uint32_t s = 0; s < 9; ++s)
        EXPECT_EQ(a[s], s * 10 + 9);
    EXPECT_EQ(a, b);
}

TEST_F(SweepRunnerTest, RngStreamIsSplitByShardIndexNotSchedule)
{
    const auto unit = [](ShardContext &ctx) { return ctx.rng.next(); };
    SweepRunner serial(host_, SweepOptions{1, 1234});
    SweepRunner parallel(host_, SweepOptions{4, 1234});
    const auto a = serial.map<uint64_t>(32, unit);
    // Run the parallel sweep twice: scheduling varies, streams do not.
    const auto b = parallel.map<uint64_t>(32, unit);
    const auto c = parallel.map<uint64_t>(32, unit);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);

    // A different base seed yields different streams.
    SweepRunner other(host_, SweepOptions{1, 99});
    EXPECT_NE(a, other.map<uint64_t>(32, unit));
}

TEST_F(SweepRunnerTest, ZeroShardsIsANoOp)
{
    SweepRunner runner(host_, SweepOptions{4, 0});
    bool ran = false;
    runner.forEachShard(0, [&](ShardContext &) { ran = true; });
    EXPECT_FALSE(ran);
    EXPECT_TRUE(runner.map<int>(0, [](ShardContext &) { return 1; })
                    .empty());
}

TEST_F(SweepRunnerTest, ReplicasMatchTheLegacyHostDevice)
{
    // A self-contained unit (write before read) must observe the same
    // device on a replica as on the legacy serial host.
    const auto unit = [](ShardContext &ctx) -> uint64_t {
        const dram::RowAddr row = 100 + 4 * ctx.shard;
        ctx.host.writeRowPattern(0, row, 0xDEADBEEFULL);
        ctx.host.writeRowPattern(0, row + 1, 0);
        ctx.host.hammer(0, row + 1, 200000, 35.0);
        return ctx.host.readRowBits(0, row).popcount();
    };
    SweepRunner serial(host_, SweepOptions{1, 0});
    SweepRunner parallel(host_, SweepOptions{4, 0});
    EXPECT_EQ(serial.map<uint64_t>(12, unit),
              parallel.map<uint64_t>(12, unit));
}

TEST_F(SweepRunnerTest, ParallelMetricsMergeMatchesSerial)
{
    // Commands issued per shard are program-determined, and every
    // histogram sample is a time delta within one shard (windows
    // reset at shard boundaries), so the merged parallel registry
    // must equal the serial one bit for bit.
    const auto unit = [](ShardContext &ctx) {
        const dram::RowAddr row = 100 + 4 * ctx.shard;
        ctx.host.writeRowPattern(0, row, ~0ULL);
        ctx.host.hammer(0, row + 1, 50 + ctx.shard, 35.0);
        (void)ctx.host.readRow(0, row);
    };

    obs::MetricsRegistry serial_metrics;
    host_.setMetrics(&serial_metrics);
    SweepRunner serial(host_, SweepOptions{1, 0});
    serial.forEachShard(10, unit);

    obs::MetricsRegistry parallel_metrics;
    host_.setMetrics(&parallel_metrics);
    SweepRunner parallel(host_, SweepOptions{4, 0});
    parallel.forEachShard(10, unit);
    host_.setMetrics(nullptr);

    EXPECT_EQ(serial_metrics.snapshot(), parallel_metrics.snapshot());
    // Spot-check the aggregate: per shard s, 1 ACT (setup write) +
    // (50+s) hammer ACTs + 1 ACT (read-back) = 20 + 545 over 10 shards.
    EXPECT_EQ(serial_metrics.snapshot().counterOr0("cmd.act"), 565u);
}

TEST_F(SweepRunnerTest, ReplicaRegistriesDrainOncePerSweep)
{
    // Replica registries are reset after each drain; a second sweep on
    // the same runner must add exactly one more run's worth of counts.
    const auto unit = [](ShardContext &ctx) {
        ctx.host.hammer(0, 50, 100, 35.0);
    };
    obs::MetricsRegistry metrics;
    host_.setMetrics(&metrics);
    SweepRunner runner(host_, SweepOptions{4, 0});
    runner.forEachShard(8, unit);
    const uint64_t once = metrics.snapshot().counterOr0("cmd.act");
    EXPECT_EQ(once, 800u);
    runner.forEachShard(8, unit);
    host_.setMetrics(nullptr);
    EXPECT_EQ(metrics.snapshot().counterOr0("cmd.act"), 2 * once);
}

// ---------------------------------------------------------------------
// Serial-vs-parallel equivalence of the figure entry points.
// ---------------------------------------------------------------------

class SweepEquivalenceTest : public ::testing::Test
{
  protected:
    SweepEquivalenceTest() : cfg_(testutil::tinyPlain())
    {
    }

    /** Builds a fresh device + suite with the given job count. */
    struct Rig
    {
        dram::Chip chip;
        bender::Host host;
        Characterization charact;

        Rig(const dram::DeviceConfig &cfg, unsigned jobs)
            : chip(cfg), host(chip),
              charact(host,
                      core::PhysMap::fromSwizzle(chip.swizzle(),
                                                 cfg.columnsPerRow(),
                                                 cfg.rdDataBits),
                      makeOpts(jobs))
        {
        }

        static CharactOptions
        makeOpts(unsigned jobs)
        {
            CharactOptions opts;
            opts.victimRows = 16;
            opts.baseRow = 300;
            opts.jobs = jobs;
            return opts;
        }
    };

    dram::DeviceConfig cfg_;
};

TEST_F(SweepEquivalenceTest, RunAttackFlipsAreBitIdentical)
{
    Rig serial(cfg_, 1), parallel(cfg_, 4);
    const BitVec victim(cfg_.rowBits, true);
    const BitVec aggr(cfg_.rowBits, false);
    const auto a = serial.charact.runAttack(AibMechanism::RowHammer,
                                            true, true, victim, aggr,
                                            300000, 35.0);
    const auto b = parallel.charact.runAttack(AibMechanism::RowHammer,
                                              true, true, victim, aggr,
                                              300000, 35.0);
    EXPECT_EQ(a.flipsPerHostBit, b.flipsPerHostBit);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.cellsPerRow, b.cellsPerRow);
    EXPECT_EQ(a.physRows, b.physRows);
}

TEST_F(SweepEquivalenceTest, BerVsPhysIndexVectorsAreIdentical)
{
    Rig serial(cfg_, 1), parallel(cfg_, 4);
    for (const bool data_one : {false, true}) {
        for (const bool upper : {false, true}) {
            const auto a = serial.charact.berVsPhysIndex(
                AibMechanism::RowHammer, data_one, upper);
            const auto b = parallel.charact.berVsPhysIndex(
                AibMechanism::RowHammer, data_one, upper);
            EXPECT_EQ(a, b) << "panel data=" << data_one
                            << " upper=" << upper;
        }
    }
    const auto a = serial.charact.berVsPhysIndex(
        AibMechanism::RowPress, true, true);
    const auto b = parallel.charact.berVsPhysIndex(
        AibMechanism::RowPress, true, true);
    EXPECT_EQ(a, b);
}

TEST_F(SweepEquivalenceTest, PatternBerValuesAreIdentical)
{
    Rig serial(cfg_, 1), parallel(cfg_, 4);
    for (const auto &[vic, aggr] :
         {std::pair<uint8_t, uint8_t>{0xF, 0x0},
          std::pair<uint8_t, uint8_t>{0x3, 0xC},
          std::pair<uint8_t, uint8_t>{0x5, 0xA}}) {
        EXPECT_EQ(serial.charact.patternBer(vic, aggr),
                  parallel.charact.patternBer(vic, aggr))
            << "victim=" << int(vic) << " aggr=" << int(aggr);
    }
}

TEST_F(SweepEquivalenceTest, GateTypeBerIsIdentical)
{
    Rig serial(cfg_, 1), parallel(cfg_, 4);
    const auto a = serial.charact.gateTypeBer(AibMechanism::RowHammer);
    const auto b = parallel.charact.gateTypeBer(AibMechanism::RowHammer);
    EXPECT_EQ(a.dischargedGateA, b.dischargedGateA);
    EXPECT_EQ(a.dischargedGateB, b.dischargedGateB);
    EXPECT_EQ(a.chargedGateA, b.chargedGateA);
    EXPECT_EQ(a.chargedGateB, b.chargedGateB);
}

TEST_F(SweepEquivalenceTest, EdgeVsTypicalIsIdentical)
{
    Rig serial(cfg_, 1), parallel(cfg_, 4);
    const std::vector<dram::RowAddr> edge = {4, 12, 20, 28};
    const std::vector<dram::RowAddr> typical = {52, 60, 68, 76};
    const auto a = serial.charact.edgeVsTypical(typical, edge);
    const auto b = parallel.charact.edgeVsTypical(typical, edge);
    EXPECT_EQ(a.typicalAggr0Vic1, b.typicalAggr0Vic1);
    EXPECT_EQ(a.edgeAggr0Vic1, b.edgeAggr0Vic1);
    EXPECT_EQ(a.typicalAggr1Vic0, b.typicalAggr1Vic0);
    EXPECT_EQ(a.edgeAggr1Vic0, b.edgeAggr1Vic0);
}

TEST_F(SweepEquivalenceTest, RelativeBerAndHcntAreIdentical)
{
    Rig serial(cfg_, 1), parallel(cfg_, 4);
    EXPECT_EQ(serial.charact.relativeBerVictimNeighbors(false, true,
                                                        true),
              parallel.charact.relativeBerVictimNeighbors(false, true,
                                                          true));
    EXPECT_EQ(serial.charact.relativeBerAggrNeighbors(false, true,
                                                      false, false),
              parallel.charact.relativeBerAggrNeighbors(false, true,
                                                        false, false));
    EXPECT_EQ(serial.charact.relativeHcnt(false, false, true),
              parallel.charact.relativeHcnt(false, false, true));
}

TEST_F(SweepEquivalenceTest, MergedMetricsAreIdenticalAcrossAllEntryPoints)
{
    // The acceptance contract of the observability layer: with a
    // metrics registry attached, a DRAMSCOPE_JOBS=1 run and a
    // DRAMSCOPE_JOBS=4 run of every sweep-routed figure entry point
    // produce identical merged snapshots.
    Rig serial(cfg_, 1), parallel(cfg_, 4);
    obs::MetricsRegistry serial_metrics, parallel_metrics;
    serial.host.setMetrics(&serial_metrics);
    parallel.host.setMetrics(&parallel_metrics);

    const auto exercise = [this](Characterization &charact) {
        const BitVec victim(cfg_.rowBits, true);
        const BitVec aggr(cfg_.rowBits, false);
        (void)charact.runAttack(AibMechanism::RowHammer, true, true,
                                victim, aggr, 50000, 35.0);
        (void)charact.berVsPhysIndex(AibMechanism::RowHammer, true, true);
        (void)charact.berVsPhysIndex(AibMechanism::RowPress, false, true);
        (void)charact.gateTypeBer(AibMechanism::RowHammer);
        (void)charact.edgeVsTypical({52, 60}, {4, 12});
        (void)charact.relativeBerVictimNeighbors(false, true, true);
        (void)charact.relativeBerAggrNeighbors(false, true, false, false);
        (void)charact.relativeHcnt(false, false, true);
        (void)charact.patternBer(0x3, 0xC);
    };
    exercise(serial.charact);
    exercise(parallel.charact);

    const auto a = serial_metrics.snapshot();
    const auto b = parallel_metrics.snapshot();
    EXPECT_EQ(a, b);
    // The snapshots actually saw the workload.
    EXPECT_GT(a.counterOr0("cmd.act"), 0u);
    EXPECT_GT(a.counterOr0("bank.act.0"), 0u);
    EXPECT_GT(a.histograms.at("act.open_ns").total, 0u);
}

TEST_F(SweepEquivalenceTest, OddJobCountsAndRemapAlsoMatch)
{
    // Jobs that do not divide the shard count, plus the Mfr. A row
    // remap, on the richer tiny config (coupling + remap enabled).
    dram::DeviceConfig cfg = dram::makeTinyConfig();
    auto opts = Rig::makeOpts(1);
    opts.rowRemap = cfg.rowRemap;

    dram::Chip chip1(cfg);
    bender::Host host1(chip1);
    Characterization serial(
        host1,
        core::PhysMap::fromSwizzle(chip1.swizzle(), cfg.columnsPerRow(),
                                   cfg.rdDataBits),
        opts);

    opts.jobs = 3;
    dram::Chip chip3(cfg);
    bender::Host host3(chip3);
    Characterization parallel(
        host3,
        core::PhysMap::fromSwizzle(chip3.swizzle(), cfg.columnsPerRow(),
                                   cfg.rdDataBits),
        opts);

    EXPECT_EQ(serial.berVsPhysIndex(AibMechanism::RowHammer, true, true),
              parallel.berVsPhysIndex(AibMechanism::RowHammer, true,
                                      true));
    EXPECT_EQ(serial.patternBer(0x3, 0xC), parallel.patternBer(0x3, 0xC));
}

} // namespace
} // namespace dramscope
