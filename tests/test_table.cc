/**
 * @file
 * Unit tests for the table/CSV writers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/table.h"

namespace dramscope {
namespace {

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2.5"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("| longer"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ShortRowsPad)
{
    Table t({"a", "b", "c"});
    t.addRow({"only"});
    const std::string out = t.render();
    EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(Table, NumFormats)
{
    EXPECT_EQ(Table::num(uint64_t(42)), "42");
    EXPECT_EQ(Table::num(int64_t(-7)), "-7");
    EXPECT_EQ(Table::num(1.5, 3), "1.5");
    EXPECT_EQ(Table::num(0.123456, 3), "0.123");
}

TEST(Table, CsvEscapesSeparators)
{
    Table t({"k", "v"});
    t.addRow({"a,b", "say \"hi\""});
    const std::string path = "/tmp/dramscope_table_test.csv";
    t.writeCsv(path);
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string csv = ss.str();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace dramscope
