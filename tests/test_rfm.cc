/**
 * @file
 * RFM interface tests (SS VI-B): in-DRAM tracking plus MC-side RFM
 * cadence protect coupled rows without the MC knowing the relation.
 */

#include <gtest/gtest.h>

#include "bender/host.h"
#include "core/protect/rfm.h"
#include "dram/chip.h"
#include "test_common.h"

namespace dramscope {
namespace {

using dram::RowAddr;

TEST(RfmEngine, TracksTheHottestRow)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    core::RfmEngine engine(chip, 0, 4);
    engine.onActivate(10, 100);
    engine.onActivate(20, 500);
    engine.onActivate(30, 50);
    engine.onRfm(1000);
    // The hottest row (20) got its neighbours refreshed: two rows.
    EXPECT_EQ(engine.mitigations(), 2u);
}

TEST(RfmEngine, SpaceSavingInheritsTheFloor)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    core::RfmEngine engine(chip, 0, 2);
    engine.onActivate(1, 100);
    engine.onActivate(2, 200);
    // Table full: row 3 evicts the minimum (row 1) and inherits 100.
    engine.onActivate(3, 1);
    engine.onRfm(1000);  // Row 2 is still the max.
    EXPECT_EQ(engine.mitigations(), 2u);
}

TEST(RfmController, IssuesAtTheRaaimtCadence)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    core::RfmEngine engine(chip, 0);
    core::RfmController mc(engine, 1000);
    mc.onActivate(5, 999, 100);
    EXPECT_EQ(mc.rfmCount(), 0u);
    mc.onActivate(5, 1, 200);
    EXPECT_EQ(mc.rfmCount(), 1u);
    mc.onActivate(5, 3000, 300);
    EXPECT_EQ(mc.rfmCount(), 4u);
}

TEST(Rfm, ProtectsAgainstTheCoupledSplitAttack)
{
    // The MC never learns the coupled relation; the in-DRAM engine
    // resolves it (SS VI-B's recommended deployment).
    dram::DeviceConfig cfg = dram::makeTinyConfig();
    cfg.rowRemap = dram::RowRemapScheme::None;
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::RfmEngine engine(chip, 0);
    core::RfmController mc(engine, 2000);

    const RowAddr aggr = 60, partner = 572;
    for (const RowAddr v : {aggr - 1, aggr + 1, partner - 1, partner + 1})
        host.writeRowPattern(0, v, ~0ULL);
    host.writeRowPattern(0, aggr, 0);
    host.writeRowPattern(0, partner, 0);

    // Split attack in chunks, mirrored to the MC hook.
    for (int round = 0; round < 6; ++round) {
        for (const RowAddr a : {aggr, partner}) {
            host.hammer(0, a, 1950);
            mc.onActivate(a, 1950, host.now());
        }
    }
    EXPECT_GT(mc.rfmCount(), 0u);
    for (const RowAddr v :
         {aggr - 1, aggr + 1, partner - 1, partner + 1}) {
        const BitVec row = host.readRowBits(0, v);
        EXPECT_EQ(row.size() - row.popcount(), 0u) << "victim " << v;
    }
}

TEST(Rfm, WithoutRfmTheSameAttackFlips)
{
    dram::DeviceConfig cfg = dram::makeTinyConfig();
    cfg.rowRemap = dram::RowRemapScheme::None;
    dram::Chip chip(cfg);
    bender::Host host(chip);

    const RowAddr aggr = 60, partner = 572;
    for (const RowAddr v : {aggr - 1, aggr + 1, partner - 1, partner + 1})
        host.writeRowPattern(0, v, ~0ULL);
    host.writeRowPattern(0, aggr, 0);
    host.writeRowPattern(0, partner, 0);
    for (int round = 0; round < 6; ++round) {
        for (const RowAddr a : {aggr, partner})
            host.hammer(0, a, 1950);
    }
    size_t flips = 0;
    for (const RowAddr v :
         {aggr - 1, aggr + 1, partner - 1, partner + 1}) {
        const BitVec row = host.readRowBits(0, v);
        flips += row.size() - row.popcount();
    }
    EXPECT_GT(flips, 0u);
}

} // namespace
} // namespace dramscope
