/**
 * @file
 * Protection-mechanism tests: activation tracking vs coupled rows,
 * DRFM, and data scrambling (SS VI).
 */

#include <gtest/gtest.h>

#include "core/protect/drfm.h"
#include "core/protect/rowswap.h"
#include "core/protect/scramble.h"
#include "core/protect/tracker.h"
#include "core/patterns.h"
#include "dram/chip.h"
#include "test_common.h"

namespace dramscope {
namespace {

using core::ActivationTracker;
using core::TrackerOptions;
using dram::RowAddr;

TEST(Tracker, FiresAtThreshold)
{
    TrackerOptions opts;
    opts.threshold = 100;
    ActivationTracker t(opts);
    for (int k = 0; k < 99; ++k)
        EXPECT_TRUE(t.onActivate(5).empty());
    const auto fired = t.onActivate(5);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], RowAddr(5));
    EXPECT_EQ(t.mitigations(), 1u);
}

TEST(Tracker, BulkCountsAccumulate)
{
    TrackerOptions opts;
    opts.threshold = 1000;
    ActivationTracker t(opts);
    EXPECT_TRUE(t.onActivate(7, 999).empty());
    EXPECT_FALSE(t.onActivate(7, 1).empty());
}

TEST(Tracker, CoupledAwareFoldsThePair)
{
    TrackerOptions opts;
    opts.threshold = 1000;
    opts.coupledAware = true;
    opts.coupledDistance = 512;
    ActivationTracker t(opts);
    // Split activations across the coupled pair.
    EXPECT_TRUE(t.onActivate(20, 500).empty());
    const auto fired = t.onActivate(532, 500);
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], RowAddr(20));
    EXPECT_EQ(fired[1], RowAddr(532));
}

TEST(Tracker, UnawareTrackerMissesSplitActivations)
{
    TrackerOptions opts;
    opts.threshold = 1000;
    ActivationTracker t(opts);
    EXPECT_TRUE(t.onActivate(20, 999).empty());
    EXPECT_TRUE(t.onActivate(532, 999).empty());
    EXPECT_EQ(t.mitigations(), 0u);
}

TEST(Tracker, MisraGriesSpillRaisesFloor)
{
    TrackerOptions opts;
    opts.tableSize = 2;
    opts.threshold = 100;
    ActivationTracker t(opts);
    t.onActivate(1, 10);
    t.onActivate(2, 10);
    // Table is full: row 3 spills, raising the floor for future rows.
    t.onActivate(3, 50);
    // A new row entering later starts from the raised floor, so it
    // reaches the threshold sooner — the conservative MG property.
    t.onActivate(1, 10);  // Still tracked normally.
    const auto fired = t.onActivate(1, 80);
    EXPECT_FALSE(fired.empty());
}

TEST(Tracker, ResetClearsState)
{
    TrackerOptions opts;
    opts.threshold = 100;
    ActivationTracker t(opts);
    t.onActivate(4, 99);
    t.reset();
    EXPECT_TRUE(t.onActivate(4, 99).empty());
}

TEST(Tracker, CoupledCanonicalHoldsAtTheBankEdges)
{
    // Row 0's partner is the distance itself, and the last row folds
    // onto distance - 1: the canonical representative (the smaller of
    // the pair) must absorb both halves of a split attack at either
    // edge of the bank.
    TrackerOptions opts;
    opts.threshold = 1000;
    opts.coupledAware = true;
    opts.coupledDistance = 512;

    ActivationTracker low(opts);
    EXPECT_TRUE(low.onActivate(0, 500).empty());
    const auto firedLow = low.onActivate(512, 500);
    ASSERT_EQ(firedLow.size(), 2u);
    EXPECT_EQ(firedLow[0], RowAddr(0));
    EXPECT_EQ(firedLow[1], RowAddr(512));

    ActivationTracker high(opts);
    EXPECT_TRUE(high.onActivate(1023, 500).empty());
    const auto firedHigh = high.onActivate(511, 500);
    ASSERT_EQ(firedHigh.size(), 2u);
    EXPECT_EQ(firedHigh[0], RowAddr(511));
    EXPECT_EQ(firedHigh[1], RowAddr(1023));
}

TEST(Tracker, SpilledTiesNeverFireButTrackedTiesDo)
{
    // Misra-Gries under a table full of equal counters: newcomers
    // spill (raising the floor) instead of evicting an arbitrary tie,
    // so no spilled row can fire spuriously — while every tracked tie
    // still fires exactly at its threshold.
    TrackerOptions opts;
    opts.tableSize = 4;
    opts.threshold = 100;
    ActivationTracker t(opts);
    for (RowAddr r = 1; r <= 4; ++r)
        t.onActivate(r, 50);  // Four tracked ties at 50.
    for (RowAddr r = 10; r <= 13; ++r)
        EXPECT_TRUE(t.onActivate(r, 40).empty());  // All spill.
    EXPECT_EQ(t.mitigations(), 0u);

    // The tracked ties are still intact and fire at the threshold.
    for (RowAddr r = 1; r <= 4; ++r) {
        const auto fired = t.onActivate(r, 50);
        ASSERT_EQ(fired.size(), 1u) << r;
        EXPECT_EQ(fired[0], r);
    }
    EXPECT_EQ(t.mitigations(), 4u);

    // reset() clears the spill floor too, not just the counters.
    t.reset();
    t.onActivate(20, 99);
    EXPECT_TRUE(t.onActivate(20, 0).empty());
    EXPECT_FALSE(t.onActivate(20, 1).empty());
}

TEST(ProtectedMemory, MitigationProgramClampsAtTheBankEdges)
{
    // Victim refresh at row 0 has no row -1, and at the last row no
    // row +1: the program holds exactly one ACT..PRE cycle.
    const auto cfg = testutil::tinyPlain();
    const auto countActs = [](const bender::Program &p) {
        size_t acts = 0;
        for (const auto &in : p.instrs())
            acts += in.op == bender::Opcode::Act ? 1 : 0;
        return acts;
    };
    const auto lo = core::ProtectedMemory::makeMitigationProgram(cfg, 0, 0);
    EXPECT_EQ(countActs(lo), 1u);
    ASSERT_GE(lo.size(), 1u);
    EXPECT_EQ(lo.instrs()[0].row, RowAddr(1));

    const RowAddr last = cfg.rowsPerBank - 1;
    const auto hi =
        core::ProtectedMemory::makeMitigationProgram(cfg, 0, last);
    EXPECT_EQ(countActs(hi), 1u);
    EXPECT_EQ(hi.instrs()[0].row, last - 1);

    const auto mid = core::ProtectedMemory::makeMitigationProgram(cfg, 0, 9);
    EXPECT_EQ(countActs(mid), 2u);
}

class CoupledAttackTest : public ::testing::Test
{
  protected:
    /** Coupled tiny chip, no remap, thresholds per DisturbParams. */
    static dram::DeviceConfig
    coupledConfig()
    {
        dram::DeviceConfig cfg = dram::makeTinyConfig();
        cfg.rowRemap = dram::RowRemapScheme::None;
        return cfg;
    }

    /** Total flips around both rows of the coupled pair. */
    static size_t
    victimFlips(bender::Host &host, RowAddr aggr)
    {
        size_t flips = 0;
        const RowAddr partner = aggr ^ 512u;
        for (const RowAddr v :
             {aggr - 1, aggr + 1, partner - 1, partner + 1}) {
            const BitVec row = host.readRowBits(0, v);
            flips += row.size() - row.popcount();
        }
        return flips;
    }

    static void
    armVictims(bender::Host &host, RowAddr aggr)
    {
        const RowAddr partner = aggr ^ 512u;
        for (const RowAddr v :
             {aggr - 1, aggr + 1, partner - 1, partner + 1})
            host.writeRowPattern(0, v, ~0ULL);
        host.writeRowPattern(0, aggr, 0);
        host.writeRowPattern(0, partner, 0);
    }
};

TEST_F(CoupledAttackTest, UnawareTrackerIsBypassedBySplitAttack)
{
    dram::Chip chip(coupledConfig());
    bender::Host host(chip);
    TrackerOptions opts;
    opts.threshold = 6000;
    core::ProtectedMemory mem(host, opts);

    // Eight coupled pairs in typical subarrays: enough victim cells
    // for the just-over-threshold dose to flip the weakest of them.
    size_t flips = 0;
    for (RowAddr aggr = 52; aggr <= 92; aggr += 8) {
        armVictims(host, aggr);
        // Split the hammering across the coupled pair: each counter
        // stays below threshold, but the shared wordline sees the
        // full count.
        mem.hammer(0, aggr, 5900);
        mem.hammer(0, aggr ^ 512u, 5900);
        flips += victimFlips(host, aggr);
    }
    EXPECT_EQ(mem.tracker().mitigations(), 0u);
    EXPECT_GT(flips, 0u);
}

TEST_F(CoupledAttackTest, AwareTrackerStopsTheSplitAttack)
{
    dram::Chip chip(coupledConfig());
    bender::Host host(chip);
    TrackerOptions opts;
    opts.threshold = 6000;
    opts.coupledAware = true;
    opts.coupledDistance = 512;
    core::ProtectedMemory mem(host, opts);

    size_t flips = 0;
    for (RowAddr aggr = 52; aggr <= 92; aggr += 8) {
        armVictims(host, aggr);
        mem.hammer(0, aggr, 5900);
        mem.hammer(0, aggr ^ 512u, 5900);
        flips += victimFlips(host, aggr);
    }
    EXPECT_GT(mem.tracker().mitigations(), 0u);
    EXPECT_EQ(flips, 0u);
}

TEST_F(CoupledAttackTest, VictimRefreshIncidentallyProtectsCoupledRows)
{
    // The paper's nuance (SS VI-A): victim-refresh mitigation stays
    // secure on coupled chips, because the refresh ACT of row A+-1 is
    // itself coupled and restores (A^D)+-1 too.
    dram::Chip chip(coupledConfig());
    bender::Host host(chip);
    TrackerOptions opts;
    opts.threshold = 6000;
    core::ProtectedMemory mem(host, opts);  // Not coupled-aware.

    const RowAddr aggr = 60;
    armVictims(host, aggr);
    mem.hammer(0, aggr, 100000);

    EXPECT_GT(mem.tracker().mitigations(), 0u);
    EXPECT_EQ(victimFlips(host, aggr), 0u);
}

TEST_F(CoupledAttackTest, RowSwapDefenseIsNeutralizedByCoupledRows)
{
    // SS VI-A: MC-side row swapping relocates only row A; the
    // attacker keeps driving the same physical wordline through the
    // never-swapped row B = A ^ D.
    dram::Chip chip(coupledConfig());
    bender::Host host(chip);
    core::RowSwapOptions opts;
    opts.threshold = 6000;
    opts.spareBase = 400;  // Far from the attacked region.
    core::RowSwapDefense defense(host, opts);

    size_t flips = 0;
    for (RowAddr aggr = 52; aggr <= 92; aggr += 8) {
        armVictims(host, aggr);
        defense.hammer(0, aggr, 6000);          // Triggers the swap.
        defense.hammer(0, aggr ^ 512u, 6000);   // Same physical WL.
        flips += victimFlips(host, aggr);
    }
    EXPECT_GT(defense.swaps(), 0u);
    EXPECT_GT(flips, 0u);
}

TEST_F(CoupledAttackTest, CoupledAwareRowSwapStopsTheAttack)
{
    dram::Chip chip(coupledConfig());
    bender::Host host(chip);
    core::RowSwapOptions opts;
    opts.threshold = 6000;
    opts.spareBase = 400;
    opts.coupledAware = true;
    opts.coupledDistance = 512;
    core::RowSwapDefense defense(host, opts);

    size_t flips = 0;
    for (RowAddr aggr = 52; aggr <= 92; aggr += 8) {
        armVictims(host, aggr);
        defense.hammer(0, aggr, 6000);
        defense.hammer(0, aggr ^ 512u, 6000);
        flips += victimFlips(host, aggr);
    }
    EXPECT_GT(defense.swaps(), 0u);
    EXPECT_EQ(flips, 0u);
}

TEST(Drfm, ProtectsCoupledVictims)
{
    dram::DeviceConfig cfg = dram::makeTinyConfig();
    cfg.rowRemap = dram::RowRemapScheme::None;
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::DrfmOptions opts;
    opts.interval = 4000;
    core::DrfmController drfm(chip, opts);

    const RowAddr aggr = 20, partner = 532;
    for (const RowAddr v : {aggr - 1, aggr + 1, partner - 1, partner + 1})
        host.writeRowPattern(0, v, ~0ULL);
    host.writeRowPattern(0, aggr, 0);
    host.writeRowPattern(0, partner, 0);

    for (int chunk = 0; chunk < 15; ++chunk) {
        host.hammer(0, aggr, 2000);
        drfm.onActivate(aggr, 2000, host.now());
    }
    EXPECT_GT(drfm.drfmCount(), 0u);

    for (const RowAddr v :
         {aggr - 1, aggr + 1, partner - 1, partner + 1}) {
        const BitVec row = host.readRowBits(0, v);
        EXPECT_EQ(row.size() - row.popcount(), 0u) << "victim " << v;
    }
}

TEST(Drfm, WithoutItTheSameAttackFlips)
{
    dram::DeviceConfig cfg = dram::makeTinyConfig();
    cfg.rowRemap = dram::RowRemapScheme::None;
    dram::Chip chip(cfg);
    bender::Host host(chip);

    const RowAddr aggr = 60;
    for (const RowAddr v : {aggr - 1, aggr + 1})
        host.writeRowPattern(0, v, ~0ULL);
    host.writeRowPattern(0, aggr, 0);
    host.hammer(0, aggr, 100000);
    size_t flips = 0;
    for (const RowAddr v : {aggr - 1, aggr + 1}) {
        const BitVec row = host.readRowBits(0, v);
        flips += row.size() - row.popcount();
    }
    EXPECT_GT(flips, 0u);
}

TEST(Scrambler, RoundtripIsTransparent)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::Scrambler scrambler(host, 0xFEEDULL);

    BitVec data(cfg.rowBits);
    for (size_t i = 0; i < data.size(); i += 5)
        data.set(i, true);
    scrambler.writeRowBits(0, 9, data);
    EXPECT_EQ(scrambler.readRowBits(0, 9), data);
    // The array itself holds masked data.
    EXPECT_NE(host.readRowBits(0, 9), data);
}

TEST(Scrambler, MasksDifferPerRowWhenRowKeyed)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::Scrambler keyed(host, 0xFEEDULL, true);
    core::Scrambler legacy(host, 0xFEEDULL, false);
    EXPECT_NE(keyed.mask(1), keyed.mask(2));
    EXPECT_EQ(legacy.mask(1), legacy.mask(2));
}

TEST(Scrambler, NeutralizesTheAdversarialPattern)
{
    // SS VI-B: the worst-case data pattern through a scrambling MC
    // causes far fewer bitflips than when written raw.
    dram::DeviceConfig cfg = testutil::tinyPlain();
    const auto map = core::PhysMap::fromSwizzle(
        dram::Swizzle(cfg), cfg.columnsPerRow(), cfg.rdDataBits);
    const BitVec victim = core::AdversarialPatterns::worstBerVictimRow(map);
    const BitVec aggr =
        core::AdversarialPatterns::worstBerAggressorRow(map);

    auto attack = [&](bool scrambled) {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        core::Scrambler scr(host, 0x5EEDULL);
        size_t flips = 0;
        for (RowAddr base = 52; base < 84; base += 4) {
            if (scrambled) {
                scr.writeRowBits(0, base, victim);
                scr.writeRowBits(0, base + 1, aggr);
            } else {
                host.writeRowBits(0, base, victim);
                host.writeRowBits(0, base + 1, aggr);
            }
            host.hammer(0, base + 1, 300000);
            const BitVec read = scrambled ? scr.readRowBits(0, base)
                                          : host.readRowBits(0, base);
            flips += read.hammingDistance(victim);
        }
        return flips;
    };

    const size_t raw = attack(false);
    const size_t scrambled = attack(true);
    // The scrambled pattern behaves like random data (~0.7x the
    // solid baseline) while the raw adversarial pattern sits ~1.4x
    // above it; expect a wide margin between the two.
    EXPECT_GT(raw * 2, scrambled * 3);
}

} // namespace
} // namespace dramscope
