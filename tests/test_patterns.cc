/**
 * @file
 * Adversarial-pattern builder tests.
 */

#include <gtest/gtest.h>

#include "core/patterns.h"
#include "dram/swizzle.h"
#include "test_common.h"

namespace dramscope {
namespace {

class PatternsTest : public ::testing::Test
{
  protected:
    PatternsTest()
        : cfg_(testutil::tinyPlain()), swz_(cfg_),
          map_(core::PhysMap::fromSwizzle(swz_, cfg_.columnsPerRow(),
                                          cfg_.rdDataBits))
    {
    }

    dram::DeviceConfig cfg_;
    dram::Swizzle swz_;
    core::PhysMap map_;
};

TEST_F(PatternsTest, WorstBerPatternIsPhysical0x33)
{
    const BitVec victim =
        core::AdversarialPatterns::worstBerVictimRow(map_);
    const BitVec phys = map_.toPhysical(victim);
    for (size_t p = 0; p < phys.size(); ++p)
        EXPECT_EQ(phys.get(p), (p % 4) < 2) << p;
}

TEST_F(PatternsTest, AggressorIsComplementOfVictim)
{
    // O14: vertically adjacent aggressor and victim cells must hold
    // opposite values.
    const BitVec victim = map_.toPhysical(
        core::AdversarialPatterns::worstBerVictimRow(map_));
    const BitVec aggr = map_.toPhysical(
        core::AdversarialPatterns::worstBerAggressorRow(map_));
    for (size_t p = 0; p < victim.size(); ++p)
        EXPECT_NE(victim.get(p), aggr.get(p)) << p;
}

TEST_F(PatternsTest, TargetedRowIsolatesTheVictimCell)
{
    const uint32_t target = 42;
    const BitVec host = core::AdversarialPatterns::targetedVictimRow(
        map_, target, /*vic0_value=*/true);
    const BitVec phys = map_.toPhysical(host);
    EXPECT_TRUE(phys.get(target));
    // Horizontal neighbours at distance 1 and 2 hold the opposite.
    EXPECT_FALSE(phys.get(target - 1));
    EXPECT_FALSE(phys.get(target + 1));
    EXPECT_FALSE(phys.get(target - 2));
    EXPECT_FALSE(phys.get(target + 2));
}

TEST_F(PatternsTest, TargetedAggressorIsSolidOpposite)
{
    const BitVec aggr =
        core::AdversarialPatterns::targetedAggressorRow(map_, true);
    EXPECT_EQ(aggr.popcount(), 0u);
    const BitVec aggr0 =
        core::AdversarialPatterns::targetedAggressorRow(map_, false);
    EXPECT_EQ(aggr0.popcount(), aggr0.size());
}

} // namespace
} // namespace dramscope
