/**
 * @file
 * Shared helpers for the DRAMScope test suite.
 */

#ifndef DRAMSCOPE_TESTS_TEST_COMMON_H
#define DRAMSCOPE_TESTS_TEST_COMMON_H

#include "dram/config.h"

namespace dramscope {
namespace testutil {

/** Tiny config with remap and coupling disabled: pure physics tests. */
inline dram::DeviceConfig
tinyPlain()
{
    dram::DeviceConfig cfg = dram::makeTinyConfig();
    cfg.name = "tiny-plain";
    cfg.rowRemap = dram::RowRemapScheme::None;
    cfg.coupledRowDistance.reset();
    cfg.validate();
    return cfg;
}

/** Tiny config variant with an identity swizzle. */
inline dram::DeviceConfig
tinyIdentitySwizzle()
{
    dram::DeviceConfig cfg = tinyPlain();
    cfg.name = "tiny-identity";
    cfg.swizzlePerm = {0, 1, 2, 3, 4, 5, 6, 7};
    cfg.validate();
    return cfg;
}

} // namespace testutil
} // namespace dramscope

#endif // DRAMSCOPE_TESTS_TEST_COMMON_H
