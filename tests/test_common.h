/**
 * @file
 * Shared helpers for the DRAMScope test suite.
 */

#ifndef DRAMSCOPE_TESTS_TEST_COMMON_H
#define DRAMSCOPE_TESTS_TEST_COMMON_H

#include <cmath>

#include "bender/host.h"
#include "bender/program.h"
#include "dram/config.h"
#include "util/rng.h"

namespace dramscope {
namespace testutil {

/** Tiny config with remap and coupling disabled: pure physics tests. */
inline dram::DeviceConfig
tinyPlain()
{
    dram::DeviceConfig cfg = dram::makeTinyConfig();
    cfg.name = "tiny-plain";
    cfg.rowRemap = dram::RowRemapScheme::None;
    cfg.coupledRowDistance.reset();
    cfg.validate();
    return cfg;
}

/** Tiny config variant with an identity swizzle. */
inline dram::DeviceConfig
tinyIdentitySwizzle()
{
    dram::DeviceConfig cfg = tinyPlain();
    cfg.name = "tiny-identity";
    cfg.swizzlePerm = {0, 1, 2, 3, 4, 5, 6, 7};
    cfg.validate();
    return cfg;
}

// ---------------------------------------------------------------------
// Property-based fuzzing of hammer kernels (fast-forward equivalence).
// ---------------------------------------------------------------------

/**
 * One randomly drawn — but lint-clean by construction — hammer
 * kernel.  Every field is a pure function of @p seed, so a failing
 * case is replayed by logging the seed alone.
 */
struct FuzzHammer
{
    uint64_t seed = 0;
    dram::BankId bank = 0;
    dram::RowAddr row = 0;
    uint64_t count = 0;
    double openNs = 0;
    bool nopBody = false;  //!< Pad the open with Nop cycles, not SleepNs.
};

/**
 * Draws a fuzz kernel.  The open-time menu deliberately spans every
 * engine path of the bulk fast-forward:
 *
 *   35, 48       in-spec, whole-ns period  -> one batched actMany call
 *   31           sub-tRAS, whole-ns period -> batched violation replay
 *   36.25, 41.5  in-spec, fractional period -> whole-ns gate falls
 *                back to per-iteration replay
 *   20, 14.75    sub-tRAS, fractional period -> fallback + violations
 *   7800         the RowPress dwell (long-open dose term), batched
 */
inline FuzzHammer
drawFuzzHammer(const dram::DeviceConfig &cfg, uint64_t seed)
{
    static const double kOpens[] = {35.0,  48.0, 31.0,  36.25,
                                    41.5,  20.0, 14.75, 7800.0};
    constexpr size_t kOpenCount = sizeof(kOpens) / sizeof(kOpens[0]);
    FuzzHammer f;
    f.seed = seed;
    // hashUniform is (0,1]: floor + modulo keeps u == 1 in range.
    f.bank = dram::BankId(uint64_t(hashUniform(seed, 1) * cfg.numBanks) %
                          cfg.numBanks);
    f.row = dram::RowAddr(2 + uint64_t(hashUniform(seed, 2) *
                                       (cfg.rowsPerBank - 4)) %
                                  (cfg.rowsPerBank - 4));
    f.count = 1 + uint64_t(hashUniform(seed, 3) * 96.0);
    f.openNs = kOpens[size_t(hashUniform(seed, 4) * kOpenCount) % kOpenCount];
    // A Nop-padded open (certifiers must accept both idle encodings)
    // needs the pad to be a whole number of tCK cycles.
    const double pad_cycles = (f.openNs - cfg.timing.tCkNs) / cfg.timing.tCkNs;
    f.nopBody = hashUniform(seed, 5) < 0.5 &&
                std::abs(pad_cycles - std::round(pad_cycles)) < 1e-9;
    return f;
}

/**
 * Builds the program for a fuzz kernel.  The SleepNs body is exactly
 * Host::makeHammerProgram; the Nop body re-encodes the open pad as
 * idle cycles, which certifyHammerLoop must cost identically.
 */
inline bender::Program
fuzzHammerProgram(const dram::DeviceConfig &cfg, const FuzzHammer &f)
{
    if (!f.nopBody) {
        return bender::Host::makeHammerProgram(cfg, f.bank, f.row, f.count,
                                               f.openNs);
    }
    const auto &t = cfg.timing;
    const double close_ns =
        std::max(t.tRpNs, t.tRcNs() - f.openNs - t.tCkNs);
    const uint64_t pad =
        uint64_t(std::llround((f.openNs - t.tCkNs) / t.tCkNs));
    bender::Program p;
    p.loopBegin(f.count)
        .act(f.bank, f.row)
        .nop(pad)
        .pre(f.bank)
        .sleepNs(close_ns)
        .loopEnd();
    if (f.openNs < t.tRasNs)
        p.expectViolation(bender::lint::Rule::TRas);
    return p;
}

} // namespace testutil
} // namespace dramscope

#endif // DRAMSCOPE_TESTS_TEST_COMMON_H
